// Command bpsim runs a branch predictor over a synthetic workload (or a
// recorded trace file) and reports accuracy, MPKI, H2P screening results
// and — optionally — pipeline IPC.
//
// Examples:
//
//	bpsim -workload 605.mcf_s -predictor tage-sc-l-8 -budget 2000000
//	bpsim -workload game -predictor tage-sc-l-64 -pipeline 4
//	bpsim -workload game -pipeline 1,4,16 -parallel 3
//	bpsim -workload game -pipeline 1,4,16 -tracecache 64 -cacheslice 65536 -ckptslice 65536
//	bpsim -workload game -pipeline 1,4,16 -tracestore ./store -tracestorecap 512
//	bpsim -workload game -budget 8000000 -recshards 4
//	bpsim -trace trace.blt -predictor gshare
//	bpsim -list
//
// -pipeline accepts a comma-separated list of scales; the timed runs
// execute on the engine worker pool (-parallel workers, 0 = NumCPU) and
// print in scale order regardless of completion order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"branchlab/internal/cliutil"
	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/faultinject"
	"branchlab/internal/pipeline"
	"branchlab/internal/trace"
	"branchlab/internal/tracecache"
	"branchlab/internal/tracestore"
	"branchlab/internal/workload"
	"branchlab/internal/zoo"
)

func main() {
	var (
		workloadName = flag.String("workload", "", "workload name (see -list)")
		input        = flag.Int("input", 0, "application input index")
		traceFile    = flag.String("trace", "", "run a recorded .blt trace instead of a workload")
		predName     = flag.String("predictor", "tage-sc-l-8", "predictor name")
		budget       = flag.Uint64("budget", 2_000_000, "instruction budget")
		sliceLen     = flag.Uint64("slice", 500_000, "slice length for H2P screening")
		pipeScales   = flag.String("pipeline", "", "pipeline scale(s), comma-separated (empty = accuracy only)")
		parallel     = flag.Int("parallel", 0, "engine workers for the pipeline sweep (0 = NumCPU)")
		recShards    = flag.Int("recshards", 0, "record the workload trace on this many workers (<= 1 = sequential; byte-identical)")
		cacheMB      = flag.Int64("tracecache", 0, "trace cache cap in MiB (0 = unbounded; evicted slices re-record byte-identically); setting it forces caching even for single-scale runs")
		cacheSlice   = flag.Uint64("cacheslice", tracecache.DefaultSliceInsts, "trace cache slice granularity in instructions (0 = whole-trace eviction)")
		ckptSlice    = flag.Uint64("ckptslice", tracecache.DefaultSliceInsts, "payload checkpoint spacing in instructions for O(window) evicted-slice refills (0 = no checkpoints)")
		storeFlag    = flag.String("tracestore", "", "persistent trace store directory (\"\" = off); warm runs replay stored traces without recording; setting it forces caching")
		storeCapFlag = flag.Int64("tracestorecap", 0, "trace store disk budget in MiB (0 = unbounded); coldest whole traces evict first")
		deadline     = flag.Duration("deadline", 0, "whole-invocation wall-clock bound (0 = none); an expired run fails typed, never prints truncated results")
		cacheStats   = tracecache.StatsFlag(nil)
		list         = flag.Bool("list", false, "list workloads and predictors")
		top          = flag.Int("top", 0, "print the top-N mispredicting branches")
	)
	flag.Parse()

	// Fault-injection sweeps arm a seeded plan via BRANCHLAB_FAULTSEED;
	// builds without the faultinject tag refuse the variable so a sweep
	// can never silently run unfaulted.
	if err := faultinject.ActivateFromEnv(os.LookupEnv); err != nil {
		fmt.Fprintln(os.Stderr, "bpsim:", err)
		os.Exit(1)
	}
	topN = *top
	cacheCap = *cacheMB << 20
	cacheSliceInsts = *cacheSlice
	ckptSliceInsts = *ckptSlice
	storeDir = *storeFlag
	storeCapBytes = *storeCapFlag << 20
	printCacheStats = *cacheStats

	if *list {
		fmt.Println("workloads (specint2017):")
		for _, s := range workload.SPECint2017Like() {
			fmt.Printf("  %-20s inputs=%d\n", s.Name, s.NumInputs)
		}
		fmt.Println("workloads (lcf):")
		for _, s := range workload.LCFLike() {
			fmt.Printf("  %-20s inputs=%d\n", s.Name, s.NumInputs)
		}
		fmt.Println("predictors:")
		for _, n := range zoo.Names() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	scales, err := parseScales(*pipeScales)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bpsim:", err)
		os.Exit(1)
	}
	// The workload cache exists for multi-scale sweeps, sharded
	// recording, and whenever -tracecache or -tracestore is explicitly
	// provided (see run); geometry flags outside those combinations
	// would be silently ignored, so they are rejected instead.
	cacheForced = cliutil.Provided(nil, "tracecache") || storeDir != ""
	cacheWillExist := *traceFile == "" && (len(scales) > 1 || *recShards > 1 || cacheForced)
	if *traceFile != "" && storeDir != "" {
		fmt.Fprintln(os.Stderr, "bpsim: -tracestore persists workload recordings and has no effect with -trace (files re-open and stream)")
		os.Exit(1)
	}
	if err := (cliutil.RunFlags{
		Budget:        *budget,
		SliceLen:      *sliceLen,
		Parallel:      *parallel,
		RecShards:     *recShards,
		CacheEnabled:  cacheWillExist,
		CacheSliceSet: cliutil.Provided(nil, "cacheslice"),
		CkptSliceSet:  cliutil.Provided(nil, "ckptslice"),
		StoreSet:      storeDir != "",
		StoreCap:      *storeCapFlag,
		StoreCapSet:   cliutil.Provided(nil, "tracestorecap"),
		Deadline:      *deadline,
		DeadlineSet:   cliutil.Provided(nil, "deadline"),
	}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "bpsim:", err)
		os.Exit(1)
	}
	if *traceFile != "" {
		// Flags that parameterize workload synthesis are meaningless —
		// and were silently ignored — against a recorded trace file.
		if *workloadName != "" {
			fmt.Fprintln(os.Stderr, "bpsim: -trace and -workload are mutually exclusive; choose one input")
			os.Exit(1)
		}
		if *recShards > 1 {
			fmt.Fprintln(os.Stderr, "bpsim: -recshards shards workload synthesis and has no effect with -trace")
			os.Exit(1)
		}
		if cacheForced {
			fmt.Fprintln(os.Stderr, "bpsim: -tracecache caches workload recordings and has no effect with -trace (files re-open and stream)")
			os.Exit(1)
		}
	}
	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}
	if err := run(ctx, *workloadName, *input, *traceFile, *predName, *budget, *sliceLen, scales, *parallel, *recShards); err != nil {
		fmt.Fprintln(os.Stderr, "bpsim:", err)
		os.Exit(1)
	}
}

// parseScales parses the -pipeline flag: "" or "0" disables the timing
// model; "4" or "1,4,16" selects the scales to sweep.
func parseScales(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -pipeline scale %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

var (
	topN            int
	cacheCap        int64
	cacheSliceInsts uint64
	ckptSliceInsts  uint64
	cacheForced     bool   // -tracecache or -tracestore explicitly provided
	storeDir        string // -tracestore directory ("" = off)
	storeCapBytes   int64  // -tracestorecap in bytes (0 = unbounded)
	printCacheStats bool
)

func run(ctx context.Context, workloadName string, input int, traceFile, predName string, budget, sliceLen uint64, pipeScales []int, parallel, recShards int) error {
	pred, err := zoo.New(predName)
	if err != nil {
		return err
	}

	// Multi-scale workload sweeps record the trace once through the
	// cache and replay it for the accuracy pass and every pipeline
	// scale; -recshards opts the recording itself into sharded
	// generation (byte-identical, so it also forces materialization),
	// and an explicit -tracecache opts in directly (the flag must never
	// be silently ignored). The cache is slice-granular: with a
	// -tracecache cap the sweep's memory is bounded by the live slices,
	// and any evicted slice re-records deterministically when a replay
	// reaches it. Accuracy-only and single-scale runs otherwise stream
	// at O(1) memory (the budget can be arbitrarily large), as do trace
	// files.
	var cache *tracecache.Cache
	if traceFile == "" && (len(pipeScales) > 1 || recShards > 1 || cacheForced) {
		cache = tracecache.NewSliced(cacheCap, cacheSliceInsts)
		// -tracestore adds the persistent tier beneath the cache
		// (DESIGN.md §11): recordings write through to the directory,
		// evicted slices promote back from disk, and a warm directory
		// restores whole traces across invocations without recording.
		if storeDir != "" {
			store, err := tracestore.Open(storeDir, storeCapBytes)
			if err != nil {
				return err
			}
			defer store.Close()
			cache.SetStore(store)
			if printCacheStats {
				defer tracestore.WriteStats(os.Stderr, store)
			}
		}
	}
	open := func() (trace.Stream, func(), error) {
		if traceFile != "" {
			f, err := os.Open(traceFile)
			if err != nil {
				return nil, nil, err
			}
			return trace.NewReader(f), func() { f.Close() }, nil
		}
		spec, ok := workload.ByName(workloadName)
		if !ok {
			return nil, nil, fmt.Errorf("unknown workload %q (use -list)", workloadName)
		}
		if cache == nil {
			s := spec.StreamCtx(ctx, input, budget)
			return s, func() { trace.CloseStream(s) }, nil
		}
		tr, err := cache.RecordCtx(ctx, spec.Name, input, budget,
			spec.CacheSource(input, budget, engine.New(parallel).WithContext(ctx), recShards, ckptSliceInsts))
		if err != nil {
			return nil, nil, err
		}
		return tr.Stream(), func() {}, nil
	}

	s, cleanup, err := open()
	if err != nil {
		return err
	}
	defer cleanup()

	col := core.NewCollector(sliceLen)
	st := core.Run(s, pred, col)
	// A stream that ended early (cancellation, payload failure) delivered
	// a truncated prefix: fail before printing anything computed from it.
	if err := trace.StreamErr(s); err != nil {
		return err
	}

	fmt.Printf("predictor:        %s\n", pred.Name())
	fmt.Printf("instructions:     %d\n", st.Insts)
	fmt.Printf("cond branches:    %d\n", st.CondExecs)
	fmt.Printf("mispredictions:   %d\n", st.Mispreds)
	fmt.Printf("accuracy:         %.4f\n", st.Accuracy())
	fmt.Printf("MPKI:             %.2f\n", st.MPKI())
	fmt.Printf("static branches:  %d (median %d per %d-inst slice)\n",
		col.StaticBranches(), col.MedianStaticPerSlice(), sliceLen)

	crit := core.PaperCriteria().Scaled(sliceLen)
	rep := crit.Screen(col)
	set := rep.Set()
	fmt.Printf("H2P branches:     %d total, %.1f avg/slice, %.1f%% of mispredictions\n",
		len(set), rep.AvgPerSlice(), 100*rep.MispredShare())
	fmt.Printf("accuracy excl. H2Ps: %.4f\n", col.AccuracyExcluding(set))
	if hh := rep.HeavyHitters(); len(hh) > 0 {
		n := len(hh)
		if n > 5 {
			n = 5
		}
		fmt.Println("top heavy hitters:")
		for _, h := range hh[:n] {
			fmt.Printf("  ip=%#x execs=%d mispreds=%d cum=%.2f\n",
				h.IP, h.Execs, h.Mispreds, h.CumMispredFrac)
		}
	}

	if topN > 0 {
		type row struct {
			ip       uint64
			execs    uint64
			mispreds uint64
		}
		var rows []row
		for ip, b := range col.Totals() {
			rows = append(rows, row{ip, b.Execs, b.Mispreds})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].mispreds > rows[j].mispreds })
		if len(rows) > topN {
			rows = rows[:topN]
		}
		fmt.Println("top mispredicting branches:")
		for _, r := range rows {
			fmt.Printf("  ip=%#x id=%-6d execs=%-8d mispreds=%-8d acc=%.3f\n",
				r.ip, (r.ip-0x400000)/64, r.execs, r.mispreds,
				1-float64(r.mispreds)/float64(r.execs))
		}
	}

	if len(pipeScales) > 0 {
		// Each scale is an independent work unit with its own stream and
		// predictor, printed in scale order. Workload streams replay the
		// cached recording (synthesized once, bounded by -budget); -trace
		// files re-open and stream at O(1) memory, since they can be
		// arbitrarily large.
		results, err := engine.MapSliceErr(ctx, engine.New(parallel), pipeScales,
			func(_ context.Context, scale int, _ int) (pipeline.Result, error) {
				s2, cleanup2, err := open()
				if err != nil {
					return pipeline.Result{}, err
				}
				defer cleanup2()
				pred2, err := zoo.New(predName)
				if err != nil {
					return pipeline.Result{}, err
				}
				res := pipeline.New(pipeline.Skylake().Scaled(scale)).
					Run(s2, pipeline.Options{Predictor: pred2})
				// A truncated stream times a prefix, not the run: fail the
				// cell rather than report a wrong IPC.
				if serr := trace.StreamErr(s2); serr != nil {
					return pipeline.Result{}, serr
				}
				return res, nil
			})
		if err != nil {
			return err
		}
		for i, scale := range pipeScales {
			res := results[i]
			fmt.Printf("pipeline %dx:      IPC %.3f (%.2f MPKI, %.2f L1D miss PKI)\n",
				scale, res.IPC, res.MPKI, res.L1DMissPKI)
		}
	}
	if printCacheStats {
		tracecache.WriteStats(os.Stderr, cache)
	}
	return nil
}
