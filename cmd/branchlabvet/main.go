// Branchlabvet is branchlab's custom vet tool: four analyzers that
// statically enforce the contracts every byte-identity guarantee in
// this repository rests on (DESIGN.md "Statically enforced
// invariants").
//
// It speaks cmd/go's -vettool protocol, so the whole module is checked
// with
//
//	go build -o bin/branchlabvet ./cmd/branchlabvet
//	go vet -vettool=bin/branchlabvet ./...
//
// or, bundled with gofmt and shellcheck, via scripts/lint.sh — the
// pre-commit entry point, and the command CI's fast lane runs.
//
// Suppress a finding with a justification comment on (or directly
// above) the flagged line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"branchlab/internal/lint/analysis"
	"branchlab/internal/lint/blockalias"
	"branchlab/internal/lint/checkpointpure"
	"branchlab/internal/lint/determinism"
	"branchlab/internal/lint/mergecomplete"
)

func main() {
	analysis.Vet(
		determinism.Analyzer,
		blockalias.Analyzer,
		checkpointpure.Analyzer,
		mergecomplete.Analyzer,
	)
}
