// Branchlabvet is branchlab's custom vet tool: seven analyzers that
// statically enforce the contracts every byte-identity guarantee in
// this repository rests on (DESIGN.md "Statically enforced
// invariants").
//
// Four are intra-package (determinism, blockalias, checkpointpure,
// mergecomplete); three exchange facts across package boundaries
// through the vet driver's .vetx files (ctxflow, errcontract,
// storegate — see DESIGN.md "Cross-package facts").
//
// It speaks cmd/go's -vettool protocol, so the whole module is checked
// with
//
//	go build -o bin/branchlabvet ./cmd/branchlabvet
//	go vet -vettool=bin/branchlabvet ./...
//
// or, bundled with gofmt and shellcheck, via scripts/lint.sh — the
// pre-commit entry point, and the command CI's fast lane runs.
//
// Two driver flags (forwarded by go vet):
//
//	-json          emit diagnostics as JSON lines
//	               {"file":...,"line":...,"col":...,"analyzer":...,"message":...}
//	-checkignores  audit mode: report stale //lint:ignore directives
//	               instead of regular diagnostics
//
// Suppress a finding with a justification comment on (or directly
// above) the flagged line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"branchlab/internal/lint/analysis"
	"branchlab/internal/lint/blockalias"
	"branchlab/internal/lint/checkpointpure"
	"branchlab/internal/lint/ctxflow"
	"branchlab/internal/lint/determinism"
	"branchlab/internal/lint/errcontract"
	"branchlab/internal/lint/mergecomplete"
	"branchlab/internal/lint/storegate"
)

func main() {
	analysis.Vet(
		determinism.Analyzer,
		blockalias.Analyzer,
		checkpointpure.Analyzer,
		mergecomplete.Analyzer,
		ctxflow.Analyzer,
		errcontract.Analyzer,
		storegate.Analyzer,
	)
}
