// Command h2pscan screens a workload across multiple application inputs
// for systematically hard-to-predict branches, reporting the Table I
// cross-input statistics: how many H2Ps exist, how many recur in 3+
// inputs, and how much misprediction mass they concentrate.
//
// Example:
//
//	h2pscan -workload 605.mcf_s -inputs 4 -budget 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"branchlab/internal/core"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "", "workload name")
		inputs = flag.Int("inputs", 3, "number of application inputs to scan")
		budget = flag.Uint64("budget", 2_000_000, "instruction budget per input")
		slice  = flag.Uint64("slice", 500_000, "slice length")
	)
	flag.Parse()
	if err := run(*name, *inputs, *budget, *slice); err != nil {
		fmt.Fprintln(os.Stderr, "h2pscan:", err)
		os.Exit(1)
	}
}

func run(name string, inputs int, budget, slice uint64) error {
	spec, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	if inputs > spec.NumInputs {
		inputs = spec.NumInputs
	}
	crit := core.PaperCriteria().Scaled(slice)
	fmt.Printf("screening %s over %d inputs (criteria: acc < %.2f, execs >= %d, mispreds >= %d per %d-inst slice)\n\n",
		spec.Name, inputs, crit.MaxAccuracy, crit.MinExecs, crit.MinMispreds, slice)

	var reports []*core.H2PReport
	for in := 0; in < inputs; in++ {
		s := spec.Stream(in, budget)
		col := core.NewCollector(slice)
		stats := core.Run(s, tage.New(tage.Config8KB()), col)
		trace.CloseStream(s)
		rep := crit.Screen(col)
		reports = append(reports, rep)
		fmt.Printf("input %d: accuracy %.4f, %d H2Ps (%.1f/slice), %.1f%% of mispredictions\n",
			in, stats.Accuracy(), len(rep.Set()), rep.AvgPerSlice(), 100*rep.MispredShare())
	}

	agg := core.Aggregate(reports)
	fmt.Printf("\nacross inputs: %d distinct H2Ps, %d appear in 3+ inputs, %.1f per input on average\n",
		agg.Total(), agg.AppearingIn(3), agg.AvgPerInput())

	// Branches recurring everywhere are the specialization targets.
	type rec struct {
		ip uint64
		n  int
	}
	var recs []rec
	for ip, n := range agg.InputsPerH2P {
		recs = append(recs, rec{ip, n})
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].n != recs[j].n {
			return recs[i].n > recs[j].n
		}
		return recs[i].ip < recs[j].ip
	})
	fmt.Println("\nmost persistent H2Ps (helper-predictor candidates):")
	for i, r := range recs {
		if i >= 10 {
			break
		}
		fmt.Printf("  ip=%#x in %d/%d inputs\n", r.ip, r.n, inputs)
	}
	return nil
}
