// Command cbp runs a CBP-style championship: every registered predictor
// over every workload in a suite, reporting accuracy and MPKI per cell
// and a final leaderboard — the §II context for why TAGE-SC-L is the
// baseline the paper screens against.
//
// Example:
//
//	cbp -suite specint2017 -budget 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"branchlab/internal/core"
	"branchlab/internal/report"
	"branchlab/internal/trace"
	"branchlab/internal/workload"
	"branchlab/internal/zoo"
)

func main() {
	var (
		suite      = flag.String("suite", "specint2017", "specint2017 or lcf")
		budget     = flag.Uint64("budget", 1_000_000, "instruction budget per workload")
		predictors = flag.String("predictors", "", "comma list (default: all)")
	)
	flag.Parse()
	if err := run(*suite, *budget, *predictors); err != nil {
		fmt.Fprintln(os.Stderr, "cbp:", err)
		os.Exit(1)
	}
}

func run(suite string, budget uint64, predictorList string) error {
	var specs []*workload.Spec
	switch suite {
	case "specint2017":
		specs = workload.SPECint2017Like()
	case "lcf":
		specs = workload.LCFLike()
	default:
		return fmt.Errorf("unknown suite %q", suite)
	}

	names := zoo.Names()
	if predictorList != "" {
		names = splitComma(predictorList)
	}

	headers := append([]string{"predictor"}, make([]string, 0, len(specs)+1)...)
	for _, s := range specs {
		headers = append(headers, shortName(s.Name))
	}
	headers = append(headers, "mean MPKI")
	tab := report.NewTable(fmt.Sprintf("MPKI by predictor and workload (%d instructions each)", budget), headers...)

	type standing struct {
		name string
		mpki float64
	}
	var standings []standing
	for _, name := range names {
		row := []string{name}
		total := 0.0
		ok := true
		for _, s := range specs {
			p, err := zoo.New(name)
			if err != nil {
				return err
			}
			st := s.Stream(0, budget)
			stats := core.Run(st, p)
			trace.CloseStream(st)
			row = append(row, fmt.Sprintf("%.2f", stats.MPKI()))
			total += stats.MPKI()
		}
		if !ok {
			continue
		}
		mean := total / float64(len(specs))
		row = append(row, fmt.Sprintf("%.2f", mean))
		tab.AddRow(row...)
		standings = append(standings, standing{name, mean})
	}
	fmt.Print(tab.String())

	sort.Slice(standings, func(i, j int) bool { return standings[i].mpki < standings[j].mpki })
	fmt.Println("\nleaderboard (mean MPKI, lower is better):")
	for i, s := range standings {
		fmt.Printf("%2d. %-18s %.2f\n", i+1, s.name, s.mpki)
	}
	return nil
}

func shortName(s string) string {
	if len(s) > 10 {
		return s[:10]
	}
	return s
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
