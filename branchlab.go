// Package branchlab is a from-scratch Go reproduction of "Branch
// Prediction Is Not A Solved Problem: Measurements, Opportunities, and
// Future Directions" (Lin & Tarsa, IISWC 2019): a trace-driven CPU
// simulation stack — synthetic workload suites, a TAGE-SC-L predictor
// with baselines, a Skylake-like out-of-order pipeline timing model —
// plus the paper's measurement toolkit: H2P screening, heavy-hitter
// ranking, SimPoint-style phase analysis, operand dependency graphs,
// recurrence intervals, register-value tracking, TAGE allocation
// telemetry and offline-trained CNN helper predictors.
//
// This package is the stable facade over the internal packages. Typical
// use:
//
//	spec, _ := branchlab.Workload("605.mcf_s")
//	stream := spec.Stream(0, 2_000_000)
//	defer branchlab.CloseStream(stream)
//
//	pred := branchlab.NewTAGESCL(8)
//	col := branchlab.NewCollector(500_000)
//	stats := branchlab.Run(stream, pred, col)
//	report := branchlab.ScreenH2Ps(col, 500_000)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every table and figure.
package branchlab

import (
	"context"
	"io"

	"branchlab/internal/bp"
	"branchlab/internal/cnn"
	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/experiments"
	"branchlab/internal/phase"
	"branchlab/internal/pipeline"
	"branchlab/internal/program"
	"branchlab/internal/report"
	"branchlab/internal/simpoint"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/tracecache"
	"branchlab/internal/tracestore"
	"branchlab/internal/workload"
	"branchlab/internal/zoo"
)

// Core trace types.
type (
	// Inst is one dynamic instruction record.
	Inst = trace.Inst
	// Stream is a forward-only instruction producer.
	Stream = trace.Stream
	// BlockStream is a forward-only producer of instruction batches,
	// the replay hot path (see Blocks/RunBlocks).
	BlockStream = trace.BlockStream
	// Buffer is a materialized, replayable trace.
	Buffer = trace.Buffer
	// Replayable is a materialized trace servable any number of times:
	// a *Buffer, or a trace-cache view that re-materializes evicted
	// slices on demand. Replays are always byte-identical.
	Replayable = trace.Replayable
	// Kind classifies instructions.
	Kind = trace.Kind
	// TraceCheckpoint is a resume point of one workload generation,
	// captured at payload safe points during a checkpointed recording:
	// the trace cache stores these in its permanent headers and resumes
	// evicted-slice refills from them in O(window) instead of skimming
	// the prefix.
	TraceCheckpoint = program.Checkpoint
)

// Predictor interfaces and implementations.
type (
	// Predictor is the branch-direction predictor contract.
	Predictor = bp.Predictor
	// TAGE is a TAGE-SC-L predictor instance.
	TAGE = tage.Predictor
	// TAGEConfig parameterizes a TAGE-SC-L instance.
	TAGEConfig = tage.Config
)

// Measurement types.
type (
	// Collector accumulates per-slice per-branch statistics.
	Collector = core.Collector
	// Criteria are H2P screening thresholds.
	Criteria = core.Criteria
	// H2PReport is the result of screening a run.
	H2PReport = core.H2PReport
	// RunStats summarizes a measurement run.
	RunStats = core.RunStats
	// Observer receives per-instruction callbacks during Run.
	Observer = core.Observer
	// WorkloadSpec is one synthetic benchmark.
	WorkloadSpec = workload.Spec
	// PipelineConfig parameterizes the timing model.
	PipelineConfig = pipeline.Config
	// PipelineResult reports IPC and misprediction outcomes.
	PipelineResult = pipeline.Result
	// PipelineOptions selects the prediction regime of a timed run.
	PipelineOptions = pipeline.Options
	// HelperModel is an offline-trained CNN helper predictor.
	HelperModel = cnn.Model
	// HelperConfig sizes a CNN helper.
	HelperConfig = cnn.Config
)

// NewTAGESCL returns a TAGE-SC-L predictor with approximately kb
// kilobytes of state (the paper studies 8 through 1024).
func NewTAGESCL(kb int) *TAGE { return tage.New(tage.NewConfig(kb)) }

// NewPredictor constructs any predictor in the repository by name (e.g.
// "tage-sc-l-8", "gshare", "perceptron"); see the zoo package for the
// full list.
func NewPredictor(name string) (Predictor, error) { return zoo.New(name) }

// PredictorNames lists the available predictor names.
func PredictorNames() []string { return zoo.Names() }

// Workload returns the named synthetic workload from either suite.
func Workload(name string) (*WorkloadSpec, bool) { return workload.ByName(name) }

// SPECint2017Like returns the nine Table I workloads.
func SPECint2017Like() []*WorkloadSpec { return workload.SPECint2017Like() }

// LCFLike returns the six Table II large-code-footprint workloads.
func LCFLike() []*WorkloadSpec { return workload.LCFLike() }

// Run drives a stream through a predictor, fanning events to observers.
// The replay iterates the trace in blocks — zero-copy when the stream
// serves them natively, as every Buffer replay does.
func Run(s Stream, p Predictor, obs ...Observer) RunStats { return core.Run(s, p, obs...) }

// RunBlocks is Run over an explicit block stream (see Blocks).
func RunBlocks(bs BlockStream, p Predictor, obs ...Observer) RunStats {
	return core.RunBlocks(bs, p, obs...)
}

// Blocks adapts a stream to block iteration with blocks of at most n
// instructions; block-native streams are better passed to RunBlocks via
// their own serving (Buffer.BlockStream).
func Blocks(s Stream, n int) BlockStream { return trace.Blocks(s, n) }

// Observe replays a stream through observers with no predictor — the
// fast path for analysis passes (dependency graphs, recurrence
// tracking, BBV collection, register values, helper-training history)
// whose observers ignore predictions.
func Observe(s Stream, obs ...Observer) RunStats { return core.Observe(s, obs...) }

// ObserveFrom is Observe with observers numbered from a base global
// instruction index — the shard replay entry point: index-keyed
// observers over slice-aligned ranges of one long trace (Buffer.Slice)
// can run on separate workers and Merge back to the exact sequential
// result (Collector.Merge, RecurrenceTracker.Merge, BBV merging).
func ObserveFrom(s Stream, base uint64, obs ...Observer) RunStats {
	return core.ObserveFrom(s, base, obs...)
}

// NewCollector returns a Collector with the given slice length.
func NewCollector(sliceLen uint64) *Collector { return core.NewCollector(sliceLen) }

// PaperCriteria returns the published H2P screening thresholds (per
// 30M-instruction slice).
func PaperCriteria() Criteria { return core.PaperCriteria() }

// ScreenH2Ps applies the paper's criteria, scaled to sliceLen, to a
// collector.
func ScreenH2Ps(col *Collector, sliceLen uint64) *H2PReport {
	return core.PaperCriteria().Scaled(sliceLen).Screen(col)
}

// CloseStream releases a stream's resources if it holds any.
func CloseStream(s Stream) error { return trace.CloseStream(s) }

// RecordTrace materializes up to budget instructions from a workload
// input.
func RecordTrace(spec *WorkloadSpec, input int, budget uint64) *Buffer {
	return spec.Record(input, budget)
}

// RecordTraceSharded is RecordTrace with the generation split across
// pool workers (nil selects a NumCPU pool): each worker deterministically
// regenerates the trace from its seed and materializes one disjoint
// range of the backing array. The result is byte-identical to
// RecordTrace at any shard count.
func RecordTraceSharded(spec *WorkloadSpec, input int, budget uint64, pool *EnginePool, shards int) *Buffer {
	return spec.RecordSharded(input, budget, pool, shards)
}

// TraceCache is a content-keyed, concurrency-safe cache of recorded
// traces: concurrent requests for one (workload, input) coalesce onto a
// single recording, smaller budgets are served as zero-copy prefix
// views of larger recordings, and memory is bounded by slice-granular
// LRU eviction — cold fixed-size slices of a trace evict independently
// and re-materialize deterministically on their next use, so the
// memory bound is the union of live slices rather than whole traces.
// Share one cache across drivers (via ExperimentConfig.Cache or
// RecordTraceCached) to synthesize each trace once per process.
type TraceCache = tracecache.Cache

// TraceCacheStats are a cache's hit/miss/eviction counters, including
// the per-slice hit/re-record/evict breakdown.
type TraceCacheStats = tracecache.Stats

// NewTraceCache returns a trace cache holding at most maxBytes of
// recorded instructions (<= 0 means unbounded) at the default slice
// granularity (tracecache.DefaultSliceInsts).
func NewTraceCache(maxBytes int64) *TraceCache { return tracecache.New(maxBytes) }

// NewSlicedTraceCache is NewTraceCache with an explicit slice
// granularity in instructions (0 = whole-trace eviction).
func NewSlicedTraceCache(maxBytes int64, sliceInsts uint64) *TraceCache {
	return tracecache.NewSliced(maxBytes, sliceInsts)
}

// TraceStore is the persistent, content-addressed disk tier beneath a
// TraceCache (DESIGN.md §11): recordings write through to its
// directory, slices the RAM cap evicts promote back zero-copy
// (mmap-served where the platform supports it), and a later process
// pointed at the same directory restores whole traces — header,
// checkpoints and slices — without recording at all. Every file is
// checksummed and keyed by the recording's full content identity
// (workload, input, budget, slice geometry, checkpoint spacing, format
// version, instruction layout); anything corrupt or mismatched is
// rejected and re-recorded, so a warm store can cost extra recording
// but never wrong bytes.
type TraceStore = tracestore.Store

// TraceStoreStats are a store's hit/write/reject counters and disk
// accounting.
type TraceStoreStats = tracestore.Stats

// OpenTraceStore opens (creating if needed) a trace store rooted at
// dir, holding at most maxBytes of trace data on disk (0 = unbounded;
// whole least-recently-used traces evict first). Attach it with
// TraceCache.SetStore or ExperimentConfig.Store, and Close it only
// after replays are done — pins served from the store become invalid
// at Close.
func OpenTraceStore(dir string, maxBytes int64) (*TraceStore, error) {
	return tracestore.Open(dir, maxBytes)
}

// RecordTraceCachedCtx is RecordTraceCached under a caller context: a
// cancelled or deadline-expired recording returns a typed error (see
// IsCancel) and never a truncated or wrong trace. Concurrent callers
// coalesce; a cancelled waiter detaches without disturbing the shared
// recording, and a cancelled leader hands the recording off to a
// surviving waiter (DESIGN.md §9).
func RecordTraceCachedCtx(ctx context.Context, c *TraceCache, spec *WorkloadSpec, input int, budget uint64) (Replayable, error) {
	return c.RecordCtx(ctx, spec.Name, input, budget,
		spec.CacheSource(input, budget, nil, 1, workload.CkptPerCacheSlice))
}

// RecordTraceCached is RecordTrace through a shared cache: it records on
// the first request for (spec, input, budget) and serves replayable
// views from memory afterwards, re-materializing any slice the cache
// cap evicted (byte-identically) on demand. The recording captures one
// payload checkpoint per cache slice, so a refill resumes from the
// nearest checkpoint below the missing window instead of regenerating
// the whole prefix. Workload traces are budget-sensitive (their static
// structure scales with the budget), so each requested budget is its
// own cache entry, never a truncated prefix of a larger recording. A
// nil cache degrades to RecordTrace.
func RecordTraceCached(c *TraceCache, spec *WorkloadSpec, input int, budget uint64) Replayable {
	return c.Record(spec.Name, input, budget,
		spec.CacheSource(input, budget, nil, 1, workload.CkptPerCacheSlice))
}

// SkylakeConfig returns the baseline pipeline configuration; scale it
// with Scaled for the paper's 2x-32x studies.
func SkylakeConfig() PipelineConfig { return pipeline.Skylake() }

// SimulateIPC times a stream on the pipeline model.
func SimulateIPC(s Stream, cfg PipelineConfig, opt PipelineOptions) PipelineResult {
	return pipeline.New(cfg).Run(s, opt)
}

// CountPhases runs SimPoint-style phase analysis over a stream.
func CountPhases(s Stream, sliceLen uint64, maxK int) int {
	return simpoint.Phases(s, sliceLen, maxK).K
}

// NewRecurrenceTracker returns the Fig 9 recurrence-interval observer.
func NewRecurrenceTracker() *phase.RecurrenceTracker { return phase.NewRecurrenceTracker() }

// DefaultHelperConfig returns the CNN helper configuration used by the
// experiments.
func DefaultHelperConfig() HelperConfig { return cnn.DefaultConfig() }

// TrainHelper trains a CNN helper for the branch at target from the
// given traces (ideally multiple application inputs, per §V-B).
func TrainHelper(cfg HelperConfig, target uint64, traces ...*Buffer) *HelperModel {
	var samples []cnn.Sample
	for _, tr := range traces {
		hc := cnn.NewHistoryCollector(cfg, target)
		core.Observe(tr.Stream(), hc)
		samples = append(samples, hc.Samples...)
	}
	m := cnn.NewModel(cfg)
	m.Train(samples)
	return m
}

// NewHelperOverlay deploys helper models alongside a base predictor.
func NewHelperOverlay(cfg HelperConfig, base Predictor) *cnn.Overlay {
	return cnn.NewOverlay(cfg, base)
}

// SaveHelper serializes a trained helper's deployment weights (the §V-D
// "application metadata" the OS would load onto the BPU).
func SaveHelper(w io.Writer, m *HelperModel) error {
	_, err := m.WriteTo(w)
	return err
}

// LoadHelper deserializes a helper model saved with SaveHelper.
func LoadHelper(r io.Reader) (*HelperModel, error) { return cnn.ReadModel(r) }

// Experiments returns the registry of paper table/figure drivers.
func Experiments() []experiments.Runner { return experiments.All() }

// ExperimentConfig is the scaling configuration for experiment drivers.
// Its Workers field selects how many engine workers each driver's work
// units run on (0 = NumCPU).
type ExperimentConfig = experiments.Config

// DefaultExperimentConfig returns the configuration used by
// EXPERIMENTS.md; QuickExperimentConfig is the smoke-test variant.
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// QuickExperimentConfig returns a reduced configuration for smoke runs.
func QuickExperimentConfig() ExperimentConfig { return experiments.Quick() }

// EnginePool schedules independent simulation work units onto a fixed
// set of workers; results merge deterministically in submission order.
type EnginePool = engine.Pool

// NewEnginePool returns a pool with the given worker count (<= 0 selects
// NumCPU). Pools are cheap; they hold no goroutines between calls.
func NewEnginePool(workers int) *EnginePool { return engine.New(workers) }

// ParallelMap runs fn(0) .. fn(n-1) on the pool and returns the results
// in index order — byte-identical merges regardless of worker count.
func ParallelMap[T any](p *EnginePool, n int, fn func(i int) T) []T {
	return engine.Map(p, n, fn)
}

// ParallelMapErr is ParallelMap with cancellation and typed failure: a
// unit error or panic fails the run (lowest-indexed unit wins,
// deterministically), a cancelled context stops dispatch and returns a
// *CancelError listing the completed units. Workers never outlive the
// call (DESIGN.md §9).
func ParallelMapErr[T any](ctx context.Context, p *EnginePool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return engine.MapErr(ctx, p, n, fn)
}

// PanicError attributes a recovered work-unit panic to its cell; the
// run fails typed, the process survives.
type PanicError = engine.PanicError

// CancelError reports a cancellation or expired deadline along with
// which work units had already completed.
type CancelError = engine.CancelError

// IsCancel reports whether err is cancellation-classified (context
// cancellation, deadline expiry, or a *CancelError) as opposed to a
// real failure. Retry policies branch on this.
func IsCancel(err error) bool { return engine.IsCancel(err) }

// RunExperiment runs one experiment driver under ctx with cfg's
// deadline applied, recovering panics into typed errors. On success it
// returns the driver's artifact; on failure a typed error and no
// artifact — never a partial one.
func RunExperiment(ctx context.Context, r experiments.Runner, cfg ExperimentConfig) (*report.Artifact, error) {
	return r.RunCtx(ctx, cfg)
}
