#!/usr/bin/env bash
# lint.sh — the one-command static gate, and the pre-commit entry
# point (DESIGN.md "Statically enforced invariants"):
#
#   1. gofmt            (formatting; fails listing unformatted files)
#   2. go vet           (the standard toolchain analyzers)
#   3. branchlabvet     (the seven contract analyzers in internal/lint:
#                        determinism, blockalias, checkpointpure,
#                        mergecomplete, ctxflow, errcontract, storegate
#                        — run as `go vet -vettool`)
#   4. branchlabvet -checkignores
#                       (suppression audit: every //lint:ignore must
#                        still cover a live finding)
#   5. shellcheck       (scripts/*.sh; skipped with a note if absent)
#
# The branchlabvet binary is built into bin/ inside the repository; on
# CI the setup-go build cache makes the rebuild a no-op, and the fast
# lane restores bin/branchlabvet from its own cache keyed on the lint
# sources (BRANCHLABVET_FROM_CACHE=1 skips the rebuild entirely).
#
# Usage:
#   scripts/lint.sh               run the whole gate
#   scripts/lint.sh --print-tool  build branchlabvet if needed and print
#                                 its path (for use as a -vettool value:
#                                 go vet -vettool=$(scripts/lint.sh --print-tool) ./...)
#
# Suppress an individual finding with a justified comment on (or
# directly above) the flagged line:
#   //lint:ignore <analyzer> <reason>
set -euo pipefail

cd "$(dirname "$0")/.."

tool=bin/branchlabvet

build_tool() {
    if [ "${BRANCHLABVET_FROM_CACHE:-}" = "1" ] && [ -x "$tool" ]; then
        echo "branchlabvet: using cached $tool" >&2
        return 0
    fi
    mkdir -p bin
    go build -o "$tool" ./cmd/branchlabvet
}

if [ "${1:-}" = "--print-tool" ]; then
    build_tool >&2
    # Print an absolute path so the value works from any directory.
    echo "$PWD/$tool"
    exit 0
fi

fail=0

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== branchlabvet (determinism, blockalias, checkpointpure, mergecomplete, ctxflow, errcontract, storegate)"
build_tool
go vet -vettool="$tool" ./... || fail=1

echo "== branchlabvet -checkignores (suppression audit)"
go vet -vettool="$tool" -checkignores ./... || fail=1

echo "== shellcheck"
if command -v shellcheck >/dev/null 2>&1; then
    shellcheck scripts/*.sh || fail=1
else
    echo "shellcheck not installed; skipping (CI runs it)" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "lint: FAILED" >&2
    exit 1
fi
echo "lint: OK"
