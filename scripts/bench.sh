#!/usr/bin/env bash
# bench.sh — run the PR2 hot-path benchmarks and emit BENCH_PR2.json.
#
# The tracked benchmarks are the perf trajectory of the trace cache and
# the core.Run loop optimization:
#   BenchmarkRunAll/cache={off,on}   - full `-run all` registry, uncached vs cached
#   BenchmarkCoreRun/observers={off,on} - replay loop fast path vs fan-out path
#   BenchmarkTraceCacheHit           - cache serve-from-memory cost
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=1x scripts/bench.sh        # CI smoke (one iteration each)
#   BENCHTIME=5s scripts/bench.sh        # stable numbers for doc updates
set -eu
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR2.json}"
benchtime="${BENCHTIME:-1s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkRunAll$|BenchmarkCoreRun$|BenchmarkTraceCacheHit$' \
  -benchtime "$benchtime" . | tee "$raw" >&2

awk -v benchtime="$benchtime" '
  /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    iters = $2
    ns = $3
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, iters, ns
  }
  BEGIN { printf "{\n\"benchtime\": \"%s\",\n\"results\": [\n", benchtime }
  END   { printf "\n]\n}\n" }
' "$raw" > "$out"

echo "wrote $out" >&2
