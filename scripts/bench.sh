#!/usr/bin/env bash
# bench.sh — run the tracked hot-path benchmarks, emit BENCH_PR4.json,
# and diff the replay-loop benchmarks against the previous PR's
# committed baseline (BENCH_PR3.json) so regressions in the block
# pipeline fail loudly.
#
# Tracked benchmarks (the perf trajectory of the replay refactors):
#   BenchmarkRunAll/cache={off,on}      - full `-run all` registry, uncached vs cached
#   BenchmarkCoreRun/observers={off,on} - block replay loop, fast path vs fan-out
#   BenchmarkCoreRun/perinst-reference  - pre-block per-instruction loop (baseline)
#   BenchmarkTraceCacheHit              - cache serve-from-memory cost
#   BenchmarkTraceCacheSlicedReplay/{resident,evicted}
#                                       - slice-cache replay: zero-copy resident
#                                         serving vs forced-eviction re-record;
#                                         the evicted run also reports peak
#                                         accounted residency (must stay below
#                                         one whole-trace footprint)
#   BenchmarkFig5Parallel/workers=N     - engine scaling (meaningful on multi-core hosts)
#   BenchmarkRecordSharded/shards=N     - sharded deterministic trace recording
#
# Two regression checks run after the benchmarks:
#   1. Intra-run gate (host-independent): the block replay loop
#      (CoreRun/observers=off) is compared against the pre-block
#      per-instruction reference compiled into the same binary and run
#      on the same host (CoreRun/perinst-reference). A ratio above
#      BLOCK_MAX fails the script — the loud failure for replay-loop
#      regressions, meaningful on any machine. Enforced when both
#      samples averaged >= 3 iterations (BENCHTIME >= 3x); a
#      single-iteration sample only reports.
#   2. Cross-run diff vs the committed BENCH_PR3.json baseline:
#      printed for trend tracking; it only FAILS when BASELINE_GATE=1,
#      because absolute ns/op from a different host (e.g. a CI runner
#      vs the machine that recorded the baseline) cannot gate
#      correctly. Set BASELINE_GATE=1 when re-measuring on the
#      baseline's host.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=1x scripts/bench.sh            # CI smoke (one iteration each)
#   BENCHTIME=5s scripts/bench.sh            # stable numbers for doc updates
#   BLOCK_MAX=1.5 scripts/bench.sh           # loosen the intra-run gate
#   BASELINE_GATE=1 REGRESSION_MAX=1.3 ...   # enforce the baseline diff
#   BASELINE=/dev/null scripts/bench.sh      # skip the baseline diff
set -eu
cd "$(dirname "$0")/.." || exit 1

out="${1:-BENCH_PR4.json}"
benchtime="${BENCHTIME:-1s}"
baseline="${BASELINE:-BENCH_PR3.json}"
regmax="${REGRESSION_MAX:-1.30}"
blockmax="${BLOCK_MAX:-1.25}"
basegate="${BASELINE_GATE:-0}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkRunAll$|BenchmarkCoreRun$|BenchmarkTraceCacheHit$|BenchmarkTraceCacheSlicedReplay$|BenchmarkFig5Parallel$|BenchmarkRecordSharded$' \
  -benchtime "$benchtime" . | tee "$raw" >&2

awk -v benchtime="$benchtime" '
  /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    iters = $2
    ns = $3
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", name, iters, ns
  }
  BEGIN { printf "{\n\"benchtime\": \"%s\",\n\"results\": [\n", benchtime }
  END   { printf "\n]\n}\n" }
' "$raw" > "$out"

echo "wrote $out" >&2

# --- regression checks -------------------------------------------------
parse() { sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.e+]*\).*/\1 \2/p' "$1"; }

# 1. Intra-run gate: block replay vs the per-instruction reference in
# the same binary on the same host. Host-independent; enforced only
# when both samples averaged >= 3 iterations — a single-iteration
# sample (BENCHTIME=1x) is one scheduler blip away from a false alarm,
# so it reports instead of failing.
parseiters() { sed -n 's/.*"name": "'"$2"'", "iterations": \([0-9]*\),.*/\1/p' "$1"; }
block_ns="$(parse "$out" | awk '$1 == "BenchmarkCoreRun/observers=off" { print $2 }')"
ref_ns="$(parse "$out" | awk '$1 == "BenchmarkCoreRun/perinst-reference" { print $2 }')"
block_it="$(parseiters "$out" 'BenchmarkCoreRun\/observers=off')"
ref_it="$(parseiters "$out" 'BenchmarkCoreRun\/perinst-reference')"
if [ -n "$block_ns" ] && [ -n "$ref_ns" ]; then
  ratio="$(awk -v a="$block_ns" -v b="$ref_ns" 'BEGIN { printf "%.3f", a/b }')"
  echo "block replay vs per-instruction reference (same run): ${ratio}x (gate ${blockmax}x)" >&2
  if [ "${block_it:-0}" -lt 3 ] || [ "${ref_it:-0}" -lt 3 ]; then
    echo "  (single-sample timings — gate reported, not enforced; use BENCHTIME>=3x to enforce)" >&2
  elif [ "$(awk -v r="$ratio" -v m="$blockmax" 'BEGIN { print (r > m) ? 1 : 0 }')" = 1 ]; then
    echo "bench.sh: block replay loop is ${ratio}x the per-instruction reference (max ${blockmax}x) — replay-loop regression" >&2
    exit 1
  fi
fi

# 2. Cross-run diff vs the committed baseline (RunAll, CoreRun,
# RecordSharded; the other benchmarks are new in this PR or, like
# TraceCacheHit, measure a path whose work changed shape between PRs
# and so have no comparable baseline). Printed for trend tracking;
# enforced only with BASELINE_GATE=1 since absolute ns/op only compare
# on the host that recorded the baseline.
if [ -f "$baseline" ]; then
  status=0
  echo "diff vs $baseline (informational unless BASELINE_GATE=1; max ${regmax}x):" >&2
  while read -r name ns; do
    case "$name" in
      BenchmarkRunAll/*|BenchmarkCoreRun/observers=*|BenchmarkRecordSharded/*) ;;
      *) continue ;;
    esac
    base_ns="$(parse "$baseline" | awk -v n="$name" '$1 == n { print $2 }')"
    [ -z "$base_ns" ] && continue
    ratio="$(awk -v a="$ns" -v b="$base_ns" 'BEGIN { printf "%.3f", a/b }')"
    flag=ok
    if [ "$(awk -v r="$ratio" -v m="$regmax" 'BEGIN { print (r > m) ? 1 : 0 }')" = 1 ]; then
      flag=REGRESSION
      status=1
    fi
    printf '  %-36s %14.0f -> %14.0f ns/op  %sx %s\n' \
      "$name" "$base_ns" "$ns" "$ratio" "$flag" >&2
  done <<EOF
$(parse "$out")
EOF
  if [ "$status" -ne 0 ] && [ "$basegate" = 1 ]; then
    echo "bench.sh: replay-loop regression exceeds ${regmax}x vs $baseline" >&2
    exit 1
  fi
fi
