#!/usr/bin/env bash
# bench.sh — run the tracked hot-path benchmarks, emit BENCH_PR9.json,
# and diff the replay-loop benchmarks against the previous PR's
# committed baseline (BENCH_PR8.json) so regressions in the block
# pipeline fail loudly.
#
# Tracked benchmarks (the perf trajectory of the replay refactors):
#   BenchmarkRunAll/cache={off,on}      - full `-run all` registry, uncached vs cached;
#                                         with BRANCHLAB_TRACESTORE set, cache=on
#                                         replays from the persistent store (reps
#                                         measure replay, not recording) and its
#                                         store hit rate lands in the JSON as
#                                         store_hit_rate
#   BenchmarkCoreRun/observers={off,on} - block replay loop, fast path vs fan-out
#   BenchmarkCoreRun/perinst-reference  - pre-block per-instruction loop (baseline)
#   BenchmarkTAGEPredictTrain/{packed,tage-reference}
#                                       - the TAGE-SC-L engine alone: bit-packed
#                                         struct-of-arrays vs the scalar
#                                         array-of-structs engine it replaced
#   BenchmarkTraceCacheHit              - cache serve-from-memory cost
#   BenchmarkTraceCacheSlicedReplay/{resident,evicted}
#                                       - slice-cache replay: zero-copy resident
#                                         serving vs forced-eviction re-record;
#                                         the evicted run also reports peak
#                                         accounted residency (must stay below
#                                         one whole-trace footprint)
#   BenchmarkEvictedRefill/mode={skim,ckpt}/pos={first,last}
#                                       - evicted-slice refill: prefix skim vs
#                                         checkpoint resume; ckpt must be
#                                         position-independent (O(window))
#   BenchmarkFig5Parallel/workers=N     - engine scaling (meaningful on multi-core hosts)
#   BenchmarkRecordSharded/shards=N     - sharded deterministic trace recording
#
# Three regression checks run after the benchmarks:
#   1. Intra-run gate (host-independent): the block replay loop
#      (CoreRun/observers=off) is compared against the pre-block
#      per-instruction reference compiled into the same binary and run
#      on the same host (CoreRun/perinst-reference). A ratio above
#      BLOCK_MAX fails the script — the loud failure for replay-loop
#      regressions, meaningful on any machine. Enforced when both
#      samples averaged >= 3 iterations (BENCHTIME >= 3x); a
#      single-iteration sample only reports.
#   2. Engine gate (host-independent, same shape as 1): the packed
#      TAGE engine (TAGEPredictTrain/packed) against the scalar
#      reference engine in the same binary and run
#      (TAGEPredictTrain/tage-reference). The packed engine exists to
#      be faster; a ratio above TAGE_MAX fails the script.
#   3. Cross-run diff vs the committed BENCH_PR8.json baseline:
#      printed for trend tracking; it only FAILS when BASELINE_GATE=1,
#      because absolute ns/op from a different host (e.g. a CI runner
#      vs the machine that recorded the baseline) cannot gate
#      correctly. Set BASELINE_GATE=1 when re-measuring on the
#      baseline's host.
#
# A missing baseline file or a tracked benchmark that vanished from the
# benchmark output is a hard error with a clear message — not a silent
# skip or a confusing parse failure downstream.
#
# Usage: scripts/bench.sh [output.json]
#   BENCHTIME=1x scripts/bench.sh            # CI smoke (one iteration each)
#   BENCHTIME=5s scripts/bench.sh            # stable numbers for doc updates
#   BRANCHLAB_TRACESTORE=$(mktemp -d) scripts/bench.sh
#                                            # cache=on replays through a
#                                            # persistent store (warm after
#                                            # the first iteration)
#   BLOCK_MAX=1.5 scripts/bench.sh           # loosen the replay intra-run gate
#   TAGE_MAX=0.9 scripts/bench.sh            # tighten the engine gate
#   BASELINE_GATE=1 REGRESSION_MAX=1.3 ...   # enforce the baseline diff
#   BASELINE=/dev/null scripts/bench.sh      # skip the baseline diff
set -eu
cd "$(dirname "$0")/.." || exit 1

out="${1:-BENCH_PR9.json}"
benchtime="${BENCHTIME:-1s}"
baseline="${BASELINE:-BENCH_PR8.json}"
regmax="${REGRESSION_MAX:-1.30}"
blockmax="${BLOCK_MAX:-1.25}"
tagemax="${TAGE_MAX:-1.00}"
basegate="${BASELINE_GATE:-0}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' \
  -bench 'BenchmarkRunAll$|BenchmarkCoreRun$|BenchmarkTAGEPredictTrain$|BenchmarkTraceCacheHit$|BenchmarkTraceCacheSlicedReplay$|BenchmarkEvictedRefill$|BenchmarkFig5Parallel$|BenchmarkRecordSharded$' \
  -benchtime "$benchtime" . | tee "$raw" >&2

awk -v benchtime="$benchtime" '
  /^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip GOMAXPROCS suffix
    iters = $2
    ns = $3
    extra = ""
    # Optional metrics (b.ReportMetric) ride on the same line as
    # "<value> <unit>" pairs; capture the store hit rate when present.
    for (i = 4; i < NF; i++)
      if ($(i + 1) == "store-hit-rate") extra = sprintf(", \"store_hit_rate\": %s", $i)
    if (n++) printf ",\n"
    printf "  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s%s}", name, iters, ns, extra
  }
  BEGIN { printf "{\n\"benchtime\": \"%s\",\n\"results\": [\n", benchtime }
  END   { printf "\n]\n}\n" }
' "$raw" > "$out"

echo "wrote $out" >&2

# --- sanity: every tracked benchmark must be present -------------------
# A benchmark that silently disappears (renamed, deleted, filtered out)
# would otherwise just vanish from the JSON and turn later baseline
# diffs into head-scratchers. The machine-dependent sub-benchmarks
# (workers=N, shards=N for N = NumCPU) are not in this list.
parse() { sed -n 's/.*"name": "\([^"]*\)".*"ns_per_op": \([0-9.e+]*\).*/\1 \2/p' "$1"; }

required='BenchmarkRunAll/cache=off
BenchmarkRunAll/cache=on
BenchmarkCoreRun/observers=off
BenchmarkCoreRun/observers=on
BenchmarkCoreRun/perinst-reference
BenchmarkTAGEPredictTrain/packed
BenchmarkTAGEPredictTrain/tage-reference
BenchmarkTraceCacheHit
BenchmarkTraceCacheSlicedReplay/resident
BenchmarkTraceCacheSlicedReplay/evicted
BenchmarkEvictedRefill/mode=skim/pos=first
BenchmarkEvictedRefill/mode=ckpt/pos=first
BenchmarkEvictedRefill/mode=skim/pos=last
BenchmarkEvictedRefill/mode=ckpt/pos=last
BenchmarkFig5Parallel/workers=1
BenchmarkRecordSharded/shards=1'
missing=0
while IFS= read -r name; do
  if ! parse "$out" | awk -v n="$name" '$1 == n { found = 1 } END { exit !found }'; then
    echo "bench.sh: tracked benchmark $name missing from the output — renamed or deleted?" >&2
    missing=1
  fi
done <<EOF
$required
EOF
if [ "$missing" -ne 0 ]; then
  echo "bench.sh: update the tracked set in scripts/bench.sh if the rename is intentional" >&2
  exit 1
fi

# --- regression checks -------------------------------------------------

# 1. Intra-run gate: block replay vs the per-instruction reference in
# the same binary on the same host. Host-independent; enforced only
# when both samples averaged >= 3 iterations — a single-iteration
# sample (BENCHTIME=1x) is one scheduler blip away from a false alarm,
# so it reports instead of failing.
parseiters() { sed -n 's/.*"name": "'"$2"'", "iterations": \([0-9]*\),.*/\1/p' "$1"; }
block_ns="$(parse "$out" | awk '$1 == "BenchmarkCoreRun/observers=off" { print $2 }')"
ref_ns="$(parse "$out" | awk '$1 == "BenchmarkCoreRun/perinst-reference" { print $2 }')"
block_it="$(parseiters "$out" 'BenchmarkCoreRun\/observers=off')"
ref_it="$(parseiters "$out" 'BenchmarkCoreRun\/perinst-reference')"
if [ -z "$block_ns" ] || [ -z "$ref_ns" ]; then
  echo "bench.sh: could not parse the intra-run gate samples from $out" >&2
  exit 1
fi
ratio="$(awk -v a="$block_ns" -v b="$ref_ns" 'BEGIN { printf "%.3f", a/b }')"
echo "block replay vs per-instruction reference (same run): ${ratio}x (gate ${blockmax}x)" >&2
if [ "${block_it:-0}" -lt 3 ] || [ "${ref_it:-0}" -lt 3 ]; then
  echo "  (single-sample timings — gate reported, not enforced; use BENCHTIME>=3x to enforce)" >&2
elif [ "$(awk -v r="$ratio" -v m="$blockmax" 'BEGIN { print (r > m) ? 1 : 0 }')" = 1 ]; then
  echo "bench.sh: block replay loop is ${ratio}x the per-instruction reference (max ${blockmax}x) — replay-loop regression" >&2
  exit 1
fi

# 2. Engine gate: the packed TAGE engine vs the scalar reference engine
# in the same binary on the same run. Host-independent, same
# single-iteration caveat as gate 1. TAGE_MAX defaults to 1.00 — the
# packed engine must at minimum not be slower than the engine it
# replaced (locally it measures well under that; the slack absorbs
# scheduler noise on loaded CI runners).
packed_ns="$(parse "$out" | awk '$1 == "BenchmarkTAGEPredictTrain/packed" { print $2 }')"
tref_ns="$(parse "$out" | awk '$1 == "BenchmarkTAGEPredictTrain/tage-reference" { print $2 }')"
packed_it="$(parseiters "$out" 'BenchmarkTAGEPredictTrain\/packed')"
tref_it="$(parseiters "$out" 'BenchmarkTAGEPredictTrain\/tage-reference')"
if [ -z "$packed_ns" ] || [ -z "$tref_ns" ]; then
  echo "bench.sh: could not parse the engine gate samples from $out" >&2
  exit 1
fi
ratio="$(awk -v a="$packed_ns" -v b="$tref_ns" 'BEGIN { printf "%.3f", a/b }')"
echo "packed TAGE engine vs scalar reference (same run): ${ratio}x (gate ${tagemax}x)" >&2
if [ "${packed_it:-0}" -lt 3 ] || [ "${tref_it:-0}" -lt 3 ]; then
  echo "  (single-sample timings — gate reported, not enforced; use BENCHTIME>=3x to enforce)" >&2
elif [ "$(awk -v r="$ratio" -v m="$tagemax" 'BEGIN { print (r > m) ? 1 : 0 }')" = 1 ]; then
  echo "bench.sh: packed TAGE engine is ${ratio}x the scalar reference (max ${tagemax}x) — engine regression" >&2
  exit 1
fi

# 3. Cross-run diff vs the committed baseline (RunAll, CoreRun,
# RecordSharded; the other benchmarks are new in this PR or measure a
# path whose work changed shape between PRs and so have no comparable
# baseline). Printed for trend tracking; enforced only with
# BASELINE_GATE=1 since absolute ns/op only compare on the host that
# recorded the baseline. BASELINE=/dev/null skips the diff explicitly;
# anything else must exist.
if [ "$baseline" = "/dev/null" ]; then
  echo "baseline diff skipped (BASELINE=/dev/null)" >&2
else
  if [ ! -f "$baseline" ]; then
    echo "bench.sh: baseline $baseline not found — commit it, point BASELINE at the right file, or set BASELINE=/dev/null to skip the diff" >&2
    exit 1
  fi
  status=0
  echo "diff vs $baseline (informational unless BASELINE_GATE=1; max ${regmax}x):" >&2
  while read -r name ns; do
    case "$name" in
      BenchmarkRunAll/*|BenchmarkCoreRun/observers=*|BenchmarkRecordSharded/*) ;;
      *) continue ;;
    esac
    base_ns="$(parse "$baseline" | awk -v n="$name" '$1 == n { print $2 }')"
    if [ -z "$base_ns" ]; then
      echo "  $name: not in $baseline (new or machine-dependent); skipped" >&2
      continue
    fi
    ratio="$(awk -v a="$ns" -v b="$base_ns" 'BEGIN { printf "%.3f", a/b }')"
    flag=ok
    if [ "$(awk -v r="$ratio" -v m="$regmax" 'BEGIN { print (r > m) ? 1 : 0 }')" = 1 ]; then
      flag=REGRESSION
      status=1
    fi
    printf '  %-36s %14.0f -> %14.0f ns/op  %sx %s\n' \
      "$name" "$base_ns" "$ns" "$ratio" "$flag" >&2
  done <<EOF
$(parse "$out")
EOF
  if [ "$status" -ne 0 ] && [ "$basegate" = 1 ]; then
    echo "bench.sh: replay-loop regression exceeds ${regmax}x vs $baseline" >&2
    exit 1
  fi
fi
