package branchlab_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"branchlab"
	"branchlab/internal/experiments"
	"branchlab/internal/program"
	"branchlab/internal/report"
	"branchlab/internal/tage"
	"branchlab/internal/tracecache"
	"branchlab/internal/tracestore"
)

// One benchmark per table and figure of the paper. Each iteration
// regenerates the artifact end to end (workload synthesis, prediction,
// screening, pipeline timing) at the Quick configuration; run
// cmd/experiments for the full-budget versions recorded in
// EXPERIMENTS.md.

func benchExperiment(b *testing.B, id string) {
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not found", id)
	}
	cfg := experiments.Quick()
	var sink *report.Artifact
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = r.Run(cfg)
	}
	if sink == nil || sink.ID != id {
		b.Fatal("experiment produced no artifact")
	}
}

func BenchmarkFig1(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkTable1(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkTable2(b *testing.B)     { benchExperiment(b, "table2") }
func BenchmarkFig3(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkTable3(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkFig6(b *testing.B)       { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)       { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkAllocStats(b *testing.B) { benchExperiment(b, "alloc") }
func BenchmarkCNNHelper(b *testing.B)  { benchExperiment(b, "cnn") }
func BenchmarkPhaseCond(b *testing.B)  { benchExperiment(b, "phasecond") }

// BenchmarkFig5Parallel contrasts the engine at 1 worker against
// NumCPU workers on the heaviest IPC sweep; the ratio of the two
// timings is the engine speedup recorded in EXPERIMENTS.md.
func BenchmarkFig5Parallel(b *testing.B) {
	r, ok := experiments.ByID("fig5")
	if !ok {
		b.Fatal("fig5 not found")
	}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := experiments.Quick()
			cfg.Workers = workers
			var sink *report.Artifact
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = r.Run(cfg)
			}
			if sink == nil || sink.ID != "fig5" {
				b.Fatal("experiment produced no artifact")
			}
		})
	}
}

// BenchmarkRunAll is the `cmd/experiments -run all` hot path: every
// driver in the registry, end to end, with the shared trace cache off
// and on. The cache=off/cache=on ratio is the invocation-level speedup
// from recording each (workload, input) trace once instead of once per
// driver; scripts/bench.sh records both in the BENCH JSON.
//
// With BRANCHLAB_TRACESTORE set (scripts/bench.sh passes it through),
// cache=on attaches the persistent store at that directory: after the
// first iteration populates it, every fresh cache restores its traces
// from disk instead of recording, so the reps measure replay — the
// steady state a CI warm cache provides — and the sub-benchmark
// reports the store hit rate alongside ns/op.
func BenchmarkRunAll(b *testing.B) {
	storeDir := os.Getenv("BRANCHLAB_TRACESTORE")
	for _, cached := range []bool{false, true} {
		name := "cache=off"
		if cached {
			name = "cache=on"
		}
		b.Run(name, func(b *testing.B) {
			var store *tracestore.Store
			if cached && storeDir != "" {
				var err error
				store, err = tracestore.Open(storeDir, 0)
				if err != nil {
					b.Fatal(err)
				}
				defer store.Close()
			}
			var sink *report.Artifact
			for i := 0; i < b.N; i++ {
				cfg := experiments.Quick()
				if cached {
					cfg.Cache = tracecache.New(0)
					cfg.Cache.SetStore(store)
				}
				for _, r := range experiments.All() {
					sink = r.Run(cfg)
				}
			}
			if sink == nil {
				b.Fatal("experiments produced no artifact")
			}
			if store != nil {
				st := store.Stats()
				hits := st.HeaderHits + st.SliceHits
				if total := hits + st.HeaderMisses + st.SliceMisses; total > 0 {
					b.ReportMetric(float64(hits)/float64(total), "store-hit-rate")
				}
			}
		})
	}
}

// BenchmarkCoreRun isolates the core.Run replay loop: the no-observer
// fast path (pure MPKI measurement) against the fan-out path with a
// collector attached, plus the pre-PR3 per-instruction reference loop
// — the block-vs-per-instruction contrast recorded in EXPERIMENTS.md.
// All replay the same recorded trace through TAGE-SC-L 8KB.
func BenchmarkCoreRun(b *testing.B) {
	spec, _ := branchlab.Workload("605.mcf_s")
	tr := branchlab.RecordTrace(spec, 0, 500_000)
	b.Run("observers=off", func(b *testing.B) {
		b.SetBytes(500_000)
		for i := 0; i < b.N; i++ {
			branchlab.Run(tr.Stream(), branchlab.NewTAGESCL(8))
		}
	})
	b.Run("observers=on", func(b *testing.B) {
		b.SetBytes(500_000)
		for i := 0; i < b.N; i++ {
			branchlab.Run(tr.Stream(), branchlab.NewTAGESCL(8), branchlab.NewCollector(125_000))
		}
	})
	b.Run("perinst-reference", func(b *testing.B) {
		b.SetBytes(500_000)
		for i := 0; i < b.N; i++ {
			runPerInstReference(tr.Stream(), branchlab.NewTAGESCL(8))
		}
	})
}

// targetTrainerRef / branchObserverRef mirror the optional predictor
// interfaces the measurement loop resolves, for the reference loop.
type targetTrainerRef interface {
	TrainWithTarget(ip, target uint64, taken, pred bool)
}
type branchObserverRef interface {
	ObserveBranch(ip, target uint64, kind branchlab.Kind, taken bool)
}

// runPerInstReference is the pre-block measurement loop — one
// Stream.Next virtual call and one 40-byte copy per instruction —
// kept as the benchmark baseline the block pipeline is measured
// against.
func runPerInstReference(s branchlab.Stream, p branchlab.Predictor) branchlab.RunStats {
	tt, _ := p.(targetTrainerRef)
	bo, _ := p.(branchObserverRef)
	var st branchlab.RunStats
	var inst branchlab.Inst
	for s.Next(&inst) {
		if inst.IsCondBranch() {
			st.CondExecs++
			pred := p.Predict(inst.IP)
			if pred != inst.Taken {
				st.Mispreds++
			}
			if tt != nil {
				tt.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pred)
			} else {
				p.Train(inst.IP, inst.Taken, pred)
			}
		} else if inst.IsBranch() {
			if bo != nil {
				bo.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
			}
		}
		st.Insts++
	}
	return st
}

// BenchmarkTAGEPredictTrain isolates the TAGE-SC-L engine itself — no
// measurement loop, no stream dispatch: the branch events of a recorded
// trace are extracted once and replayed straight through the predict/
// train/observe calls. The packed sub-benchmark is the bit-packed
// struct-of-arrays engine, tage-reference the scalar array-of-structs
// engine it replaced (mirroring BenchmarkCoreRun's perinst-reference
// pattern); their ratio is the engine-level win recorded in
// EXPERIMENTS.md. MB/s reads as M branch events/s.
func BenchmarkTAGEPredictTrain(b *testing.B) {
	spec, _ := branchlab.Workload("605.mcf_s")
	tr := branchlab.RecordTrace(spec, 0, 500_000)
	var events []branchlab.Inst
	var inst branchlab.Inst
	s := tr.Stream()
	for s.Next(&inst) {
		if inst.IsBranch() {
			events = append(events, inst)
		}
	}
	for _, e := range []struct {
		name string
		mk   func() branchlab.Predictor
	}{
		{"packed", func() branchlab.Predictor { return tage.New(tage.Config8KB()) }},
		{"tage-reference", func() branchlab.Predictor { return tage.NewReference(tage.Config8KB()) }},
	} {
		b.Run(e.name, func(b *testing.B) {
			p := e.mk()
			tt := p.(targetTrainerRef)
			bo := p.(branchObserverRef)
			b.SetBytes(int64(len(events)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range events {
					ev := &events[j]
					if ev.IsCondBranch() {
						pred := p.Predict(ev.IP)
						tt.TrainWithTarget(ev.IP, ev.Target, ev.Taken, pred)
					} else {
						bo.ObserveBranch(ev.IP, ev.Target, ev.Kind, ev.Taken)
					}
				}
			}
		})
	}
}

// BenchmarkRecordSharded contrasts sequential trace recording with
// sharded generation at NumCPU workers: on a multi-core host the
// materialization path overlaps across shards; on one core the two
// coincide (sharding costs prefix regeneration but saves the channel
// handoff).
func BenchmarkRecordSharded(b *testing.B) {
	spec, _ := branchlab.Workload("605.mcf_s")
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, shards := range counts {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(500_000)
			pool := branchlab.NewEnginePool(shards)
			for i := 0; i < b.N; i++ {
				branchlab.RecordTraceSharded(spec, 0, 500_000, pool, shards)
			}
		})
	}
}

// BenchmarkTraceCacheHit measures the cache's serve-from-memory cost
// (lock, header lookup, view construction) against the recording it
// avoids.
func BenchmarkTraceCacheHit(b *testing.B) {
	spec, _ := branchlab.Workload("605.mcf_s")
	cache := branchlab.NewTraceCache(0)
	branchlab.RecordTraceCached(cache, spec, 0, 500_000) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		branchlab.RecordTraceCached(cache, spec, 0, 500_000)
	}
}

// BenchmarkTraceCacheSlicedReplay measures a full replay through the
// slice-granular cache in its two regimes: resident (unbounded cap —
// the slice pin cost over zero-copy block serving, the common case) and
// evicted (a cap of one slice, so every slice re-materializes through
// the deterministic skim path — the worst case the LRU converts misses
// into). The resident/evicted ratio is the price of a cap miss; the
// resident number must track BenchmarkCoreRun/observers=off, since a
// resident replay is the same block loop plus one pin per slice. The
// evicted run reports peak accounted residency, which must stay below
// one whole-trace footprint (the memory bound slice eviction exists to
// provide).
func BenchmarkTraceCacheSlicedReplay(b *testing.B) {
	const budget = 500_000
	const sliceInsts = 1 << 16
	spec, _ := branchlab.Workload("605.mcf_s")
	for _, tc := range []struct {
		name string
		cap  int64
	}{
		{"resident", 0},
		{"evicted", sliceInsts * 40}, // one slice's bytes (Inst is 40B)
	} {
		b.Run(tc.name, func(b *testing.B) {
			cache := branchlab.NewSlicedTraceCache(tc.cap, sliceInsts)
			tr := branchlab.RecordTraceCached(cache, spec, 0, budget)
			b.SetBytes(budget)
			b.ResetTimer()
			var peak int64
			for i := 0; i < b.N; i++ {
				branchlab.Run(tr.Stream(), branchlab.NewTAGESCL(8))
				if st := cache.Stats(); st.BytesInUse > peak {
					peak = st.BytesInUse
				}
			}
			b.ReportMetric(float64(peak)/(1<<20), "peak-resident-MiB")
		})
	}
}

// BenchmarkEvictedRefill measures the trace cache's evicted-slice
// refill in its two regimes: the skim path (regenerate the whole
// prefix, then the window — O(prefix + window)) against the checkpoint
// path (resume from the nearest stored checkpoint — O(window)), for a
// window near the front of the trace and one at its end. The contract
// under test is position independence: ckpt/first and ckpt/last must
// coincide while skim/last scales with the trace length — the refill
// asymmetry that capped how aggressively the slice cache could evict.
// The skim/ckpt ratio at pos=last is recorded in EXPERIMENTS.md and
// BENCH_PR5.json.
func BenchmarkEvictedRefill(b *testing.B) {
	const budget = 2_000_000
	const window = 1 << 15
	spec, _ := branchlab.Workload("605.mcf_s")
	// One checkpointed recording, as the cache performs on a miss; the
	// header's checkpoint list is what the refills below resume from.
	_, cks := spec.RecordSlices(0, budget, window, nil, 1, window)
	if len(cks) == 0 {
		b.Fatal("workload captured no checkpoints")
	}
	for _, pos := range []struct {
		name string
		lo   uint64
	}{
		// Captures land at the first safe point after each multiple of
		// the spacing, so the earliest window with a checkpoint at or
		// below it starts at 2*window; lo = window would find none and
		// both modes would skim.
		{"first", 2 * window},
		{"last", budget - window},
	} {
		for _, mode := range []string{"skim", "ckpt"} {
			b.Run(fmt.Sprintf("mode=%s/pos=%s", mode, pos.name), func(b *testing.B) {
				b.SetBytes(window)
				for i := 0; i < b.N; i++ {
					var got []branchlab.Inst
					if mode == "skim" {
						got = spec.RecordRange(0, budget, pos.lo, pos.lo+window)
					} else {
						ck := program.NearestCheckpoint(cks, pos.lo)
						var err error
						got, err = spec.RecordRangeFrom(0, budget, ck, pos.lo, pos.lo+window)
						if err != nil {
							b.Fatal(err)
						}
					}
					if uint64(len(got)) != window {
						b.Fatalf("refill returned %d insts, want %d", len(got), window)
					}
				}
			})
		}
	}
}

// --- ablations: the design choices DESIGN.md calls out -----------------

// BenchmarkAblationHistoryLengths reports TAGE accuracy as the number of
// tagged tables varies, isolating the value of the geometric history
// series.
func BenchmarkAblationHistoryLengths(b *testing.B) {
	spec, _ := branchlab.Workload("641.leela_s")
	tr := branchlab.RecordTrace(spec, 0, 300_000)
	for _, tables := range []int{2, 6, 10} {
		b.Run(byTables(tables), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := tage.Config8KB()
				cfg.NumTables = tables
				st := branchlab.Run(tr.Stream(), tage.New(cfg))
				b.ReportMetric(st.Accuracy(), "accuracy")
			}
		})
	}
}

func byTables(n int) string {
	return map[int]string{2: "tables=2", 6: "tables=6", 10: "tables=10"}[n]
}

// BenchmarkAblationSC isolates the statistical corrector's contribution.
func BenchmarkAblationSC(b *testing.B) {
	spec, _ := branchlab.Workload("657.xz_s")
	tr := branchlab.RecordTrace(spec, 0, 300_000)
	for _, useSC := range []bool{false, true} {
		name := "sc=off"
		if useSC {
			name = "sc=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := tage.Config8KB()
				cfg.UseSC = useSC
				st := branchlab.Run(tr.Stream(), tage.New(cfg))
				b.ReportMetric(st.Accuracy(), "accuracy")
			}
		})
	}
}

// BenchmarkAblationLoop isolates the loop predictor's contribution.
func BenchmarkAblationLoop(b *testing.B) {
	spec, _ := branchlab.Workload("623.xalancbmk_s")
	tr := branchlab.RecordTrace(spec, 0, 300_000)
	for _, useLoop := range []bool{false, true} {
		name := "loop=off"
		if useLoop {
			name = "loop=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := tage.Config8KB()
				cfg.UseLoop = useLoop
				st := branchlab.Run(tr.Stream(), tage.New(cfg))
				b.ReportMetric(st.Accuracy(), "accuracy")
			}
		})
	}
}

// BenchmarkPredictorZoo is the CBP-style comparison: every baseline
// predictor over the same trace, accuracy reported as a metric.
func BenchmarkPredictorZoo(b *testing.B) {
	spec, _ := branchlab.Workload("631.deepsjeng_s")
	tr := branchlab.RecordTrace(spec, 0, 300_000)
	for _, name := range []string{
		"static-taken", "bimodal", "gshare", "local", "perceptron", "ppm",
		"tournament", "tage-sc-l-8", "tage-sc-l-64",
	} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := branchlab.NewPredictor(name)
				if err != nil {
					b.Fatal(err)
				}
				st := branchlab.Run(tr.Stream(), p)
				b.ReportMetric(st.Accuracy(), "accuracy")
			}
		})
	}
}

// BenchmarkPipelineScalePerfectBP sanity-checks the timing model: IPC
// must grow monotonically with pipeline scale under perfect prediction.
func BenchmarkPipelineScalePerfectBP(b *testing.B) {
	spec, _ := branchlab.Workload("600.perlbench_s")
	tr := branchlab.RecordTrace(spec, 0, 300_000)
	for _, scale := range []int{1, 4, 16} {
		b.Run(byScale(scale), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := branchlab.SimulateIPC(tr.Stream(),
					branchlab.SkylakeConfig().Scaled(scale),
					branchlab.PipelineOptions{PerfectBP: true})
				b.ReportMetric(res.IPC, "IPC")
			}
		})
	}
}

func byScale(k int) string {
	return map[int]string{1: "scale=1x", 4: "scale=4x", 16: "scale=16x"}[k]
}

// BenchmarkSimulationThroughput measures raw simulator speed
// (instructions per second through TAGE-SC-L 8KB + collector).
func BenchmarkSimulationThroughput(b *testing.B) {
	spec, _ := branchlab.Workload("605.mcf_s")
	tr := branchlab.RecordTrace(spec, 0, 500_000)
	b.SetBytes(500_000) // one "byte" per instruction: MB/s == M instrs/s
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		branchlab.Run(tr.Stream(), branchlab.NewTAGESCL(8))
	}
}
